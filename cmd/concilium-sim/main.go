// Command concilium-sim runs an end-to-end diagnostic simulation: it
// builds an IP topology and secure overlay, injects link failures and
// misbehaving forwarders, routes stewarded messages, and reports how
// Concilium attributed each drop — node vs network — against ground
// truth, alongside what a RON-style baseline would have concluded.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"concilium/internal/adversary"
	"concilium/internal/baseline"
	"concilium/internal/benchreport"
	"concilium/internal/chaos"
	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/metrics"
	"concilium/internal/parexec"
	"concilium/internal/profiling"
	"concilium/internal/topology"
	"concilium/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "concilium-sim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("concilium-sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "random seed")
	messages := fs.Int("messages", 200, "stewarded messages to route")
	malicious := fs.Float64("malicious", 0.1, "fraction of overlay nodes that drop messages")
	duration := fs.Duration("warmup", 5*time.Minute, "probing warmup before traffic")
	scale := fs.String("scale", "small", "topology scale: small or default")
	traceN := fs.Int("trace", 0, "print the last N protocol trace events")
	workers := fs.Int("workers", 0, "worker pool size for parallel system construction (0 = GOMAXPROCS); results are identical for any value")
	chaosMode := fs.Bool("chaos", false, "run the chaos-injection campaign instead of the baseline simulation")
	adversaryMode := fs.Bool("adversary", false, "run the adversarial campaign (strategy x fraction conviction grid) instead of the baseline simulation")
	chaosDuration := fs.String("duration", "short", "chaos campaign length: short or long")
	jsonPath := fs.String("json", "", "write a machine-readable bench report to this path")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write an allocs-space heap profile to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopCPU, err := profiling.StartCPU(*cpuProfile)
	if err != nil {
		return err
	}
	switch {
	case *chaosMode && *adversaryMode:
		err = fmt.Errorf("-chaos and -adversary are mutually exclusive")
	case *chaosMode:
		err = runChaos(w, *seed, *workers, *chaosDuration, *jsonPath)
	case *adversaryMode:
		err = runAdversary(w, *seed, *workers, *jsonPath)
	default:
		err = runSim(w, simOpts{
			seed: *seed, messages: *messages, malicious: *malicious,
			warmup: *duration, scale: *scale, traceN: *traceN,
			workers: *workers, jsonPath: *jsonPath,
		})
	}
	return finishProfiles(err, stopCPU, *memProfile)
}

// finishProfiles folds CPU/heap profile shutdown errors into err.
func finishProfiles(err error, stopCPU func() error, memProfile string) error {
	if cerr := stopCPU(); err == nil {
		err = cerr
	}
	if merr := profiling.WriteHeap(memProfile); err == nil {
		err = merr
	}
	return err
}

// simOpts carries the baseline simulation's flag values.
type simOpts struct {
	seed      uint64
	messages  int
	malicious float64
	warmup    time.Duration
	scale     string
	traceN    int
	workers   int
	jsonPath  string
}

func runSim(w io.Writer, o simOpts) error {
	seed, messages, malicious := &o.seed, &o.messages, &o.malicious
	duration, scale, traceN, workers := &o.warmup, &o.scale, &o.traceN, &o.workers

	cfg := core.DefaultSystemConfig()
	switch *scale {
	case "small":
		cfg.Topology = topology.TestConfig()
		cfg.OverlayFraction = 0.5
	case "default":
		cfg.Topology = topology.DefaultConfig()
		cfg.OverlayFraction = 0.03
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.MaliciousFraction = *malicious
	cfg.ArchiveRetention = 5 * time.Minute
	cfg.Workers = *workers
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	startWall := time.Now()

	var ring *trace.Ring
	counter := trace.NewCounter()
	if *traceN > 0 {
		var err error
		ring, err = trace.NewRing(*traceN)
		if err != nil {
			return err
		}
		cfg.Tracer = trace.Multi(ring, counter)
	}

	rng := rand.New(rand.NewPCG(*seed, *seed+1))
	fmt.Fprintf(w, "building system (scale=%s)...\n", *scale)
	sys, err := core.BuildCompactSystem(cfg, rng)
	if err != nil {
		return err
	}
	alive := sys.AliveIDs()
	fmt.Fprintf(w, "topology: %d routers, %d links; overlay: %d nodes (%d malicious)\n",
		sys.Topo.NumRouters(), sys.Topo.NumLinks(), len(alive),
		int(*malicious*float64(len(alive))))

	if err := sys.StartFailures(); err != nil {
		return err
	}
	if err := sys.StartProbing(); err != nil {
		return err
	}
	sys.Run(*duration)
	fmt.Fprintf(w, "warmed up: %d probe records, %d links down\n", sys.Archive.Size(), sys.Net.DownCount())

	// RON baseline over the same membership: pairwise paths via each
	// node's tomography tree. Trees are derived data on the compact
	// plane, so materialize each one here, reusing one BFS scratch.
	var scratch topology.BFSScratch
	paths := make(map[id.ID]map[id.ID][]topology.LinkID, sys.Size())
	for i := uint32(0); i < uint32(sys.Size()); i++ {
		tree, err := sys.TreeOf(i, &scratch)
		if err != nil {
			return err
		}
		row := make(map[id.ID][]topology.LinkID, len(tree.Leaves))
		for _, leaf := range tree.Leaves {
			row[leaf.Node] = leaf.Path
		}
		paths[sys.NodeID(i)] = row
	}
	ron, err := baseline.New(sys.Net, alive, paths)
	if err != nil {
		return err
	}

	var stats struct {
		sent, delivered                  int
		nodeDrops, linkDrops, ackDrops   int
		culpritRight, culpritWrong       int
		networkRight, networkWrong       int
		ronSaysPath, ronSilent, verified int
	}
	for i := 0; i < *messages; i++ {
		src := alive[rng.IntN(len(alive))]
		dst := alive[rng.IntN(len(alive))]
		if src == dst {
			continue
		}
		rep, err := sys.SendMessage(src, dst)
		if err != nil {
			return err
		}
		stats.sent++
		sys.Run(2 * time.Second) // pace traffic through the virtual clock
		if rep.Delivered && rep.AckReceived {
			stats.delivered++
			continue
		}
		switch rep.Kind {
		case core.DropByNode:
			stats.nodeDrops++
			if rep.Culprit == rep.DroppedBy {
				stats.culpritRight++
				if rep.Chain != nil && rep.Chain.Verify(sys.KeyDir(), cfg.Blame.GuiltyThreshold) == nil {
					stats.verified++
				}
			} else {
				stats.culpritWrong++
			}
			// RON's take on the same failure: the path is healthy, so it
			// has nothing to report.
			if len(rep.Route) > 1 && !ron.Diagnose(rep.Route[0], rep.Route[1]).PathBad {
				stats.ronSilent++
			}
		case core.DropByLink, core.DropAckByLink:
			if rep.Kind == core.DropByLink {
				stats.linkDrops++
			} else {
				stats.ackDrops++
			}
			if rep.NetworkBlamed {
				stats.networkRight++
			} else {
				stats.networkWrong++
			}
			if len(rep.Route) > 1 && ron.Diagnose(rep.Route[0], rep.Route[1]).PathBad {
				stats.ronSaysPath++
			}
		}
	}

	fmt.Fprintf(w, "\nmessages sent:        %d\n", stats.sent)
	fmt.Fprintf(w, "delivered+acked:      %d\n", stats.delivered)
	fmt.Fprintf(w, "dropped by node:      %d (culprit correct: %d, wrong: %d, self-verifying chains: %d)\n",
		stats.nodeDrops, stats.culpritRight, stats.culpritWrong, stats.verified)
	fmt.Fprintf(w, "dropped by network:   %d msg + %d ack (network blamed: %d, node mis-blamed: %d)\n",
		stats.linkDrops, stats.ackDrops, stats.networkRight, stats.networkWrong)
	fmt.Fprintf(w, "RON baseline:         flags path for %d network drops; silent on %d node drops (it never blames nodes)\n",
		stats.ronSaysPath, stats.ronSilent)

	if ring != nil {
		fmt.Fprintf(w, "\ntrace: %d events total (%d probes, %d verdicts, %d accusations, %d link changes)\n",
			counter.Total(), counter.Count(trace.KindProbe), counter.Count(trace.KindVerdict),
			counter.Count(trace.KindAccusation),
			counter.Count(trace.KindLinkFailed)+counter.Count(trace.KindLinkRepaired))
		fmt.Fprintf(w, "last %d events:\n", len(ring.Events()))
		for _, e := range ring.Events() {
			fmt.Fprintln(w, " ", e)
		}
	}
	if o.jsonPath != "" {
		wall := time.Since(startWall)
		report := newReport(*seed, *scale, *workers)
		report.SetSnapshot(reg.Snapshot())
		report.Figures = []benchreport.Figure{{
			Name: "simulation",
			Checks: map[string]float64{
				"sent":            float64(stats.sent),
				"delivered":       float64(stats.delivered),
				"node_drops":      float64(stats.nodeDrops),
				"link_drops":      float64(stats.linkDrops),
				"ack_drops":       float64(stats.ackDrops),
				"culprit_right":   float64(stats.culpritRight),
				"culprit_wrong":   float64(stats.culpritWrong),
				"verified_chains": float64(stats.verified),
			},
			Timing: benchreport.Timing{
				WallNs:  wall.Nanoseconds(),
				NsPerOp: perOp(wall.Nanoseconds(), int64(stats.sent)),
				Ops:     int64(stats.sent),
			},
		}}
		if err := writeReport(w, o.jsonPath, report); err != nil {
			return err
		}
	}
	return nil
}

// newReport builds a report shell with the host environment filled in.
func newReport(seed uint64, scale string, workers int) *benchreport.Report {
	report := benchreport.New("concilium-sim", seed, scale)
	report.Env = benchreport.Env{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Workers:       parexec.Workers(workers),
		Cmd:           "concilium-sim",
	}
	return report
}

// writeReport folds the verify-cache wall gauges into the report and
// writes it to path.
func writeReport(w io.Writer, path string, report *benchreport.Report) error {
	wm, err := metrics.Merge(report.WallMetrics, benchreport.VerifyCacheSnapshot())
	if err != nil {
		return err
	}
	report.WallMetrics = wm
	if err := benchreport.WriteFile(path, report); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench report written to %s\n", path)
	return nil
}

func perOp(wallNs, ops int64) int64 {
	if ops <= 0 {
		return wallNs
	}
	return wallNs / ops
}

// runChaos executes a seeded chaos campaign and prints its invariant
// report. A violated invariant is a nonzero exit, so CI can gate on
// the campaign directly.
func runChaos(w io.Writer, seed uint64, workers int, duration, jsonPath string) error {
	var cfg chaos.Config
	switch duration {
	case "short":
		cfg = chaos.ShortConfig(seed)
	case "long":
		cfg = chaos.LongConfig(seed)
	default:
		return fmt.Errorf("unknown chaos duration %q (want short or long)", duration)
	}
	cfg.Workers = workers
	fmt.Fprintf(w, "running %s chaos campaign (seed=%d)...\n", duration, seed)
	start := time.Now()
	rep, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Fprint(w, rep.String())
	if jsonPath != "" {
		report := newReport(seed, duration, workers)
		report.Metrics = rep.Metrics
		report.Figures = []benchreport.Figure{{
			Name: "chaos-" + duration,
			Checks: map[string]float64{
				"sent":           float64(rep.Sent),
				"delivered":      float64(rep.Delivered),
				"convictions":    float64(rep.Convictions),
				"chains_fetched": float64(rep.ChainsFetched),
				"invariants_ok":  boolToF(rep.Passed()),
			},
			Timing: benchreport.Timing{
				WallNs:  wall.Nanoseconds(),
				NsPerOp: perOp(wall.Nanoseconds(), int64(rep.Sent)),
				Ops:     int64(rep.Sent),
			},
		}}
		if err := writeReport(w, jsonPath, report); err != nil {
			return err
		}
	}
	if !rep.Passed() {
		return fmt.Errorf("chaos campaign violated invariants")
	}
	return nil
}

// runAdversary executes the seeded adversarial campaign grid and
// prints its conviction report. A violated invariant (ROC separation,
// honest-conviction bound, overlay-still-routing, ...) is a nonzero
// exit, so CI can gate on the campaign directly.
func runAdversary(w io.Writer, seed uint64, workers int, jsonPath string) error {
	cfg := adversary.ShortConfig(seed)
	cfg.Workers = workers
	fmt.Fprintf(w, "running adversarial campaign (seed=%d)...\n", seed)
	start := time.Now()
	rep, err := adversary.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Fprint(w, rep.String())
	if jsonPath != "" {
		report := newReport(seed, "adversary", workers)
		report.Metrics = rep.Metrics
		checks := map[string]float64{
			"cells":         float64(len(rep.Cells)),
			"invariants_ok": boolToF(rep.Passed()),
		}
		for i := range rep.Cells {
			c := &rep.Cells[i]
			key := fmt.Sprintf("%s_f%02.0f", c.Strategy, 100*c.Fraction)
			checks["att_"+key] = c.Op.AttackerRate
			checks["hon_"+key] = c.Op.HonestRate
		}
		report.Figures = []benchreport.Figure{{
			Name:   "adversary",
			Checks: checks,
			Timing: benchreport.Timing{
				WallNs:  wall.Nanoseconds(),
				NsPerOp: perOp(wall.Nanoseconds(), int64(len(rep.Cells))),
				Ops:     int64(len(rep.Cells)),
			},
		}}
		if err := writeReport(w, jsonPath, report); err != nil {
			return err
		}
	}
	if !rep.Passed() {
		return fmt.Errorf("adversarial campaign violated invariants")
	}
	return nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
