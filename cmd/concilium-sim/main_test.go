package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "40", "-warmup", "3m"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"messages sent:", "delivered+acked:", "dropped by node:",
		"dropped by network:", "RON baseline:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoMaliciousNodes(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "20", "-malicious", "0", "-warmup", "2m"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 malicious") {
		t.Errorf("expected zero malicious nodes:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "10", "-warmup", "2m", "-trace", "8"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "last 8 events") {
		t.Errorf("trace output missing:\n%s", out)
	}
}

func TestRunChaosMode(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-chaos", "-seed", "1", "-duration", "short"})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"chaos campaign seed=1", "fault kinds:", "invariants:", "result: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaosDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	render := func(workers string) string {
		var buf bytes.Buffer
		err := run(&buf, []string{"-chaos", "-seed", "5", "-duration", "short", "-workers", workers})
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		return buf.String()
	}
	if a, b := render("1"), render("8"); a != b {
		t.Errorf("chaos report differs across -workers:\n%s\nvs\n%s", a, b)
	}
}

func TestRunChaosRejectsBadDuration(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-chaos", "-duration", "eternal"}); err == nil {
		t.Error("unknown chaos duration accepted")
	}
}
