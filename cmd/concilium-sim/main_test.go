package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concilium/internal/benchreport"
)

func TestRunSmallSimulation(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "40", "-warmup", "3m"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"messages sent:", "delivered+acked:", "dropped by node:",
		"dropped by network:", "RON baseline:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoMaliciousNodes(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "20", "-malicious", "0", "-warmup", "2m"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 malicious") {
		t.Errorf("expected zero malicious nodes:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "10", "-warmup", "2m", "-trace", "8"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "last 8 events") {
		t.Errorf("trace output missing:\n%s", out)
	}
}

func TestRunChaosMode(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := run(&buf, []string{"-chaos", "-seed", "1", "-duration", "short"})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"chaos campaign seed=1", "fault kinds:", "invariants:", "result: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaosDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	render := func(workers string) string {
		var buf bytes.Buffer
		err := run(&buf, []string{"-chaos", "-seed", "5", "-duration", "short", "-workers", workers})
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		return buf.String()
	}
	if a, b := render("1"), render("8"); a != b {
		t.Errorf("chaos report differs across -workers:\n%s\nvs\n%s", a, b)
	}
}

func TestRunChaosRejectsBadDuration(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-chaos", "-duration", "eternal"}); err == nil {
		t.Error("unknown chaos duration accepted")
	}
}

func TestRunAdversaryMode(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "adversary.json")
	var buf bytes.Buffer
	err := run(&buf, []string{"-adversary", "-seed", "1", "-json", path})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"adversary campaign seed=1", "roc-separation", "invariants:", "result: PASS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("adversary output missing %q:\n%s", want, out)
		}
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure("adversary")
	if fig == nil || fig.Checks["invariants_ok"] != 1 || fig.Checks["cells"] != 16 {
		t.Errorf("adversary figure malformed: %+v", fig)
	}
	if fig.Checks["att_selective-drop_f10"] <= fig.Checks["hon_selective-drop_f10"] {
		t.Errorf("ROC separation missing from checks: %+v", fig.Checks)
	}
}

func TestRunRejectsChaosPlusAdversary(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-chaos", "-adversary"}); err == nil {
		t.Error("mutually exclusive campaign flags accepted")
	}
}

func TestRunSimJSONReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sim.json")
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "30", "-warmup", "2m", "-seed", "9", "-json", path})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "bench report written to") {
		t.Errorf("missing report confirmation:\n%s", buf.String())
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure("simulation")
	if fig == nil || fig.Checks["sent"] <= 0 || fig.Timing.WallNs <= 0 {
		t.Errorf("simulation figure malformed: %+v", fig)
	}
	if rep.Metrics.Counters["core/messages_sent"] == 0 {
		t.Errorf("metrics snapshot empty: %v", rep.Metrics.CounterNames())
	}
}

func TestRunChaosJSONReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "chaos.json")
	var buf bytes.Buffer
	err := run(&buf, []string{"-chaos", "-seed", "1", "-duration", "short", "-json", path})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure("chaos-short")
	if fig == nil || fig.Checks["invariants_ok"] != 1 || fig.Checks["sent"] <= 0 {
		t.Errorf("chaos figure malformed: %+v", fig)
	}
}

func TestRunSimProfileFlags(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run(&buf, []string{"-scale", "small", "-messages", "10", "-warmup", "2m", "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
