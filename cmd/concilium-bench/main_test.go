package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concilium/internal/benchreport"
	"concilium/internal/metrics"
)

func TestRunFig1(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "monte carlo") {
		t.Errorf("fig1 output malformed:\n%s", out)
	}
}

func TestRunFig2And3(t *testing.T) {
	t.Parallel()
	for _, fig := range []string{"2", "3"} {
		var buf bytes.Buffer
		if err := run(&buf, []string{"-fig", fig}); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), "optimal gamma") {
			t.Errorf("fig %s missing summary table", fig)
		}
	}
}

func TestRunFig4SmallScale(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "4", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "own-tree coverage") {
		t.Error("fig4 missing coverage summary")
	}
}

func TestRunFig6And7(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "6"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minimal m") {
		t.Error("fig6 missing minimal m")
	}
	buf.Reset()
	if err := run(&buf, []string{"-fig", "7"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bandwidth") {
		t.Error("fig7 missing bandwidth table")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(&buf, []string{"-scale", "galactic", "-fig", "1"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "7", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "overlay N,routing entries") {
		t.Errorf("csv table header missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("csv output contains text-format decorations")
	}
	if err := run(&buf, []string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunExtensionFig9(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "9"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "consensus") {
		t.Error("fig 9 missing consensus table")
	}
}

func TestRunJSONReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "1", "-scale", "small", "-seed", "3", "-json", path}); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 3 || rep.Scale != "small" {
		t.Errorf("header wrong: seed=%d scale=%q", rep.Seed, rep.Scale)
	}
	fig := rep.Figure("fig1")
	if fig == nil || fig.Checks["max_mean_error"] <= 0 || fig.Timing.WallNs <= 0 {
		t.Errorf("fig1 entry malformed: %+v", fig)
	}
	chaos := rep.Figure("chaos-short")
	if chaos == nil || chaos.Checks["invariants_ok"] != 1 {
		t.Errorf("chaos-short entry malformed: %+v", chaos)
	}
	// The embedded metrics snapshot must be canonical and populated.
	if rep.Metrics.Counters["core/messages_sent"] == 0 {
		t.Errorf("metrics snapshot empty: %v", rep.Metrics.CounterNames())
	}
	for _, name := range rep.Metrics.CounterNames() {
		if metrics.NonDeterministic(name) {
			t.Errorf("non-deterministic %q leaked into canonical metrics", name)
		}
	}
}

// TestRunJSONWorkerInvariance is the acceptance check: reports from
// -workers 1 and -workers 4 must have byte-identical deterministic
// cores.
func TestRunJSONWorkerInvariance(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	report := func(workers string) *benchreport.Report {
		path := filepath.Join(dir, "bench-w"+workers+".json")
		var buf bytes.Buffer
		if err := run(&buf, []string{"-fig", "1", "-scale", "small", "-seed", "7", "-workers", workers, "-json", path}); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, buf.String())
		}
		rep, err := benchreport.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	var serial, parallel bytes.Buffer
	if err := benchreport.Encode(&serial, report("1").Canonical()); err != nil {
		t.Fatal(err)
	}
	if err := benchreport.Encode(&parallel, report("4").Canonical()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("canonical cores differ across worker counts:\n%s\nvs\n%s", serial.Bytes(), parallel.Bytes())
	}
}

// TestRunScaleFigure exercises figure 10 end to end at tiny sizes: the
// JSON report must carry one figure per requested N with populated
// deterministic checks and timing, text mode must render the table, and
// a 1k-only subset at the same seed must reproduce the same checks as
// the multi-size run (the per-N substream contract).
func TestRunScaleFigure(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	report := func(name, scaleN, workers string) *benchreport.Report {
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run(&buf, []string{"-fig", "10", "-scale-n", scaleN, "-seed", "5", "-workers", workers, "-json", path}); err != nil {
			t.Fatalf("scale-n=%s workers=%s: %v\n%s", scaleN, workers, err, buf.String())
		}
		rep, err := benchreport.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := report("full.json", "60,120", "4")
	for _, name := range []string{"scale-n60", "scale-n120"} {
		fig := full.Figure(name)
		if fig == nil {
			t.Fatalf("report missing %s: %+v", name, full.Figures)
		}
		if fig.Checks["overlay_n"] <= 0 || fig.Checks["canonical_hash"] <= 0 {
			t.Errorf("%s checks unpopulated: %v", name, fig.Checks)
		}
		if fig.Timing.WallNs <= 0 || fig.Timing.Ops <= 0 || fig.Timing.SpeedupX <= 0 {
			t.Errorf("%s timing unpopulated: %+v", name, fig.Timing)
		}
	}

	// Subset and worker-count invariance: the scale-n60 checks must not
	// depend on which other sizes ran or on the pool size.
	sub := report("sub.json", "60", "1")
	fullFig, subFig := full.Figure("scale-n60"), sub.Figure("scale-n60")
	for key, want := range fullFig.Checks {
		if got := subFig.Checks[key]; got != want {
			t.Errorf("scale-n60 %s: %v in full run, %v in subset run", key, want, got)
		}
	}

	// Text mode renders the table.
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "10", "-scale-n", "60", "-seed", "5"}); err != nil {
		t.Fatalf("text mode: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "BuildCompactSystem scale") {
		t.Errorf("text output missing scale table:\n%s", buf.String())
	}

	// Bad -scale-n values are rejected.
	if err := run(&buf, []string{"-fig", "10", "-scale-n", "0"}); err == nil {
		t.Error("scale-n 0 accepted")
	}
	if err := run(&buf, []string{"-fig", "10", "-scale-n", "x"}); err == nil {
		t.Error("non-numeric scale-n accepted")
	}
}

// TestRunAdversaryFigure exercises figure 12 end to end: the JSON
// report must carry the per-cell ROC operating-point checks with
// invariants holding, and text mode must render the table plus the
// invariant list.
func TestRunAdversaryFigure(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "adversary.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "12", "-seed", "42", "-json", path}); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure("adversary")
	if fig == nil {
		t.Fatalf("report missing adversary figure: %+v", rep.Figures)
	}
	if fig.Checks["invariants_ok"] != 1 || fig.Checks["cells"] != 16 {
		t.Errorf("adversary checks unpopulated: %v", fig.Checks)
	}
	if fig.Timing.WallNs <= 0 || fig.Timing.Ops != 16 || fig.Timing.SpeedupX <= 0 {
		t.Errorf("adversary timing unpopulated: %+v", fig.Timing)
	}
	// The gate the baseline pins: attackers convict strictly above
	// honest hosts at every cell the checks cover.
	for key, att := range fig.Checks {
		if !strings.HasPrefix(key, "att_") {
			continue
		}
		hon, ok := fig.Checks["hon_"+strings.TrimPrefix(key, "att_")]
		if !ok {
			t.Errorf("check %s has no honest counterpart", key)
		} else if att <= hon {
			t.Errorf("%s: attacker rate %v not above honest %v", key, att, hon)
		}
	}

	// Text mode renders the operating-point table and invariants.
	buf.Reset()
	if err := run(&buf, []string{"-fig", "12", "-seed", "42"}); err != nil {
		t.Fatalf("text mode: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "adversarial conviction ROC") || !strings.Contains(out, "roc-separation") {
		t.Errorf("text output missing ROC table or invariants:\n%s", out)
	}
}

func TestRunProfileFlags(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "1", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
