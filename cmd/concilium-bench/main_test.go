package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "monte carlo") {
		t.Errorf("fig1 output malformed:\n%s", out)
	}
}

func TestRunFig2And3(t *testing.T) {
	t.Parallel()
	for _, fig := range []string{"2", "3"} {
		var buf bytes.Buffer
		if err := run(&buf, []string{"-fig", fig}); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), "optimal gamma") {
			t.Errorf("fig %s missing summary table", fig)
		}
	}
}

func TestRunFig4SmallScale(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "4", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "own-tree coverage") {
		t.Error("fig4 missing coverage summary")
	}
}

func TestRunFig6And7(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "6"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minimal m") {
		t.Error("fig6 missing minimal m")
	}
	buf.Reset()
	if err := run(&buf, []string{"-fig", "7"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bandwidth") {
		t.Error("fig7 missing bandwidth table")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(&buf, []string{"-scale", "galactic", "-fig", "1"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "7", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "overlay N,routing entries") {
		t.Errorf("csv table header missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("csv output contains text-format decorations")
	}
	if err := run(&buf, []string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunExtensionFig9(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "9"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "consensus") {
		t.Error("fig 9 missing consensus table")
	}
}
