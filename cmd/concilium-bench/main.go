// Command concilium-bench regenerates the paper's tables and figures as
// text series.
//
// Usage:
//
//	concilium-bench [-fig N] [-scale small|default|treelike|paper] [-seed N] [-format text|csv] [-workers N]
//	                [-scale-n N,N,...] [-traffic-n N,N,...] [-json report.json]
//	                [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Figures: 1 (occupancy model), 2 (density errors), 3 (density errors
// under suppression), 4 (forest coverage), 5 (blame PDFs + §4.3 rates),
// 6 (accusation error vs m), 7 (§4.4 bandwidth), plus extensions:
// 8 (collusion-fraction sweep), 9 (median-consensus suppression
// defense), 10 (BuildSystem scale at the -scale-n overlay sizes),
// 12 (adversarial conviction ROC grid; see internal/adversary), and
// 13 (compact-plane diagnosis traffic at the -traffic-n overlay sizes).
// -fig 0 runs the paper's seven in text mode, plus figures 10, 12, and
// 13 in benchmark mode.
//
// -json switches to benchmark mode: every selected figure runs against
// a per-figure derived seed (independent of the shared-stream text
// mode), is timed with allocation accounting and a serial reference run
// for speedup, and the results land in a versioned benchreport.Report
// together with the canonical metrics snapshot of an instrumented chaos
// campaign. The report's deterministic core is byte-identical across
// -workers values; the tool errors out if it is not.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"concilium/internal/benchreport"
	"concilium/internal/chaos"
	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/parexec"
	"concilium/internal/profiling"
	"concilium/internal/topology"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "concilium-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("concilium-bench", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (0 = all)")
	scale := fs.String("scale", "default", "topology scale: small, default, treelike, treelike-paper, or paper")
	seed := fs.Uint64("seed", 42, "random seed")
	format := fs.String("format", "text", "output format: text or csv")
	workers := fs.Int("workers", 0, "worker pool size for parallel trials (0 = GOMAXPROCS); results are identical for any value")
	scaleN := fs.String("scale-n", "1000,5000,20000", "comma-separated overlay sizes for the Scale figure (-fig 10)")
	trafficN := fs.String("traffic-n", "1000,20000", "comma-separated overlay sizes for the Traffic figure (-fig 13)")
	jsonPath := fs.String("json", "", "write a machine-readable bench report to this path (benchmark mode)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write an allocs-space heap profile to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scaleNs, err := parseScaleNs(*scaleN)
	if err != nil {
		return err
	}
	trafficNs, err := parseScaleNs(*trafficN)
	if err != nil {
		return fmt.Errorf("-traffic-n: %w", err)
	}
	stopCPU, err := profiling.StartCPU(*cpuProfile)
	if err != nil {
		return err
	}
	err = runMode(w, *jsonPath, *fig, *scale, *seed, *format, *workers, scaleNs, trafficNs)
	if cerr := stopCPU(); err == nil {
		err = cerr
	}
	if merr := profiling.WriteHeap(*memProfile); err == nil {
		err = merr
	}
	return err
}

func runMode(w io.Writer, jsonPath string, fig int, scale string, seed uint64, format string, workers int, scaleNs, trafficNs []int) error {
	var render renderer
	switch format {
	case "text":
		render = renderer{
			series: experiments.WriteSeries,
			table: func(w io.Writer, t experiments.Table) error {
				return experiments.WriteTable(w, t)
			},
		}
	case "csv":
		render = renderer{
			series: func(w io.Writer, _ string, series ...experiments.Series) error {
				return experiments.WriteSeriesCSV(w, series...)
			},
			table: func(w io.Writer, t experiments.Table) error {
				return experiments.WriteTableCSV(w, t)
			},
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}

	topoCfg, overlayFrac, err := scaleConfig(scale)
	if err != nil {
		return err
	}
	figs := []int{fig}
	if fig == 0 {
		figs = []int{1, 2, 3, 4, 5, 6, 7}
		if jsonPath != "" {
			figs = append(figs, scaleFig, adversaryFig, trafficFig)
		}
	}

	if jsonPath != "" {
		return runBenchmark(w, jsonPath, figs, topoCfg, overlayFrac, scale, seed, workers, scaleNs, trafficNs, render)
	}

	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	for _, f := range figs {
		start := time.Now()
		if f == scaleFig {
			// The Scale figure draws from the benchmark-mode substream
			// family so its checks match -json runs at the same seed.
			scaleFigs, err := runScale(io.Discard, scaleNs, parexec.NewSeed(seed, seed^0xbe9c5c95c4b4f12d), workers)
			if err != nil {
				return fmt.Errorf("figure %d: %w", f, err)
			}
			if err := render.table(w, scaleTable(scaleFigs)); err != nil {
				return fmt.Errorf("figure %d: %w", f, err)
			}
		} else if f == trafficFig {
			// Same substream family as benchmark mode, for the same reason.
			trafficFigs, err := runTraffic(io.Discard, trafficNs, parexec.NewSeed(seed, seed^0xbe9c5c95c4b4f12d), workers)
			if err != nil {
				return fmt.Errorf("figure %d: %w", f, err)
			}
			if err := render.table(w, trafficTable(trafficFigs)); err != nil {
				return fmt.Errorf("figure %d: %w", f, err)
			}
		} else if f == adversaryFig {
			if err := runAdversaryText(w, render, seed, workers); err != nil {
				return fmt.Errorf("figure %d: %w", f, err)
			}
		} else if _, err := runFig(w, render, f, topoCfg, overlayFrac, workers, rng); err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
		if format == "text" {
			fmt.Fprintf(w, "(figure %d regenerated in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// runBenchmark runs every selected figure in benchmark mode and writes
// a benchreport to jsonPath. Each figure gets its own derived seed so
// the serial reference run and the measured run consume identical
// random streams — the tool asserts their deterministic check values
// match, which is what makes the report's canonical part worker-count
// invariant by construction.
func runBenchmark(w io.Writer, jsonPath string, figs []int, topoCfg topology.Config, overlayFrac float64, scale string, seed uint64, workers int, scaleNs, trafficNs []int, render renderer) error {
	resolved := parexec.Workers(workers)
	root := parexec.NewSeed(seed, seed^0xbe9c5c95c4b4f12d)
	report := benchreport.New("concilium-bench", seed, scale)
	report.Env = benchreport.Env{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Workers:       resolved,
		Cmd:           "concilium-bench",
	}

	for _, f := range figs {
		if f == scaleFig {
			scaleFigs, err := runScale(w, scaleNs, root, workers)
			if err != nil {
				return err
			}
			report.Figures = append(report.Figures, scaleFigs...)
			continue
		}
		if f == trafficFig {
			trafficFigs, err := runTraffic(w, trafficNs, root, workers)
			if err != nil {
				return err
			}
			report.Figures = append(report.Figures, trafficFigs...)
			continue
		}
		if f == adversaryFig {
			advFig, advRep, err := runAdversaryFig(seed, resolved)
			if err != nil {
				return err
			}
			advFig.Timing.SpeedupX = 1
			if resolved != 1 {
				serialFig, _, err := runAdversaryFig(seed, 1)
				if err != nil {
					return fmt.Errorf("adversary (serial reference): %w", err)
				}
				if !checksEqual(advFig.Checks, serialFig.Checks) {
					return fmt.Errorf("adversary: checks diverge between workers=1 and workers=%d: %v vs %v",
						resolved, serialFig.Checks, advFig.Checks)
				}
				if advFig.Timing.WallNs > 0 {
					advFig.Timing.SpeedupX = float64(serialFig.Timing.WallNs) / float64(advFig.Timing.WallNs)
				}
			}
			report.Figures = append(report.Figures, advFig)
			fmt.Fprintf(w, "adversary: %v, %d cells, invariants %s (speedup %.2fx at %d workers)\n",
				time.Duration(advFig.Timing.WallNs).Round(time.Millisecond), len(advRep.Cells),
				map[bool]string{true: "ok", false: "FAILED"}[advRep.Passed()], advFig.Timing.SpeedupX, resolved)
			continue
		}
		name := fmt.Sprintf("fig%d", f)
		measure := func(nWorkers int) (map[string]float64, benchreport.Timing, error) {
			return measureFig(render, f, topoCfg, overlayFrac, nWorkers, root.Stream(uint64(f)))
		}
		checks, timing, err := measure(resolved)
		if err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
		timing.SpeedupX = 1
		if resolved != 1 {
			serialChecks, serialTiming, err := measure(1)
			if err != nil {
				return fmt.Errorf("figure %d (serial reference): %w", f, err)
			}
			if !checksEqual(checks, serialChecks) {
				return fmt.Errorf("figure %d: checks diverge between workers=1 and workers=%d: %v vs %v",
					f, resolved, serialChecks, checks)
			}
			if timing.WallNs > 0 {
				timing.SpeedupX = float64(serialTiming.WallNs) / float64(timing.WallNs)
			}
		}
		report.Figures = append(report.Figures, benchreport.Figure{Name: name, Checks: checks, Timing: timing})
		fmt.Fprintf(w, "%s: %v (speedup %.2fx at %d workers)\n",
			name, time.Duration(timing.WallNs).Round(time.Millisecond), timing.SpeedupX, resolved)
	}

	// The metrics snapshot comes from an instrumented chaos campaign —
	// the one scenario that drives every instrumented layer (probing,
	// stewarded delivery, blame, DHT, netsim churn) under one registry.
	chaosCfg := chaos.ShortConfig(seed)
	chaosCfg.Workers = workers
	start := time.Now()
	chaosRep, err := chaos.Run(chaosCfg)
	if err != nil {
		return fmt.Errorf("chaos scenario: %w", err)
	}
	wall := time.Since(start)
	report.Metrics = chaosRep.Metrics
	report.Figures = append(report.Figures, benchreport.Figure{
		Name: "chaos-short",
		Checks: map[string]float64{
			"sent":           float64(chaosRep.Sent),
			"delivered":      float64(chaosRep.Delivered),
			"convictions":    float64(chaosRep.Convictions),
			"invariants_ok":  boolToF(chaosRep.Passed()),
			"chains_fetched": float64(chaosRep.ChainsFetched),
		},
		Timing: benchreport.Timing{
			WallNs:  wall.Nanoseconds(),
			NsPerOp: perOp(wall.Nanoseconds(), int64(chaosRep.Sent)),
			Ops:     int64(chaosRep.Sent),
		},
	})
	fmt.Fprintf(w, "chaos-short: %v (%d canonical metric series)\n", wall.Round(time.Millisecond),
		len(report.Metrics.Counters)+len(report.Metrics.Gauges)+len(report.Metrics.Histograms))

	// The global verify cache is process-wide and scheduling-dependent:
	// reserved non-deterministic gauges, never part of the canonical
	// snapshot.
	report.WallMetrics = benchreport.VerifyCacheSnapshot()

	out, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := benchreport.Encode(out, report); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "bench report (%d figures) written to %s\n", len(report.Figures), jsonPath)
	return nil
}

// measureFig runs one figure with full output discarded, returning its
// deterministic checks and a timing envelope with allocation deltas.
func measureFig(render renderer, fig int, topoCfg topology.Config, overlayFrac float64, workers int, rng *rand.Rand) (map[string]float64, benchreport.Timing, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	checks, err := runFig(io.Discard, render, fig, topoCfg, overlayFrac, workers, rng)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, benchreport.Timing{}, err
	}
	t := benchreport.Timing{
		WallNs:      wall.Nanoseconds(),
		NsPerOp:     wall.Nanoseconds(),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		Ops:         1,
	}
	return checks, t, nil
}

func perOp(wallNs, ops int64) int64 {
	if ops <= 0 {
		return wallNs
	}
	return wallNs / ops
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func checksEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// renderer abstracts the output format.
type renderer struct {
	series func(io.Writer, string, ...experiments.Series) error
	table  func(io.Writer, experiments.Table) error
}

func scaleConfig(scale string) (topology.Config, float64, error) {
	switch scale {
	case "small":
		return topology.TestConfig(), 0.5, nil
	case "default":
		return topology.DefaultConfig(), 0.03, nil
	case "treelike":
		// Path-convergent variant matching the paper's Figure 4 coverage.
		return topology.TreelikeConfig(), 0.03, nil
	case "treelike-paper":
		return topology.TreelikePaperConfig(), 0.03, nil
	case "paper":
		return topology.PaperConfig(), 0.03, nil
	default:
		return topology.Config{}, 0, fmt.Errorf("unknown scale %q", scale)
	}
}

// runFig regenerates one figure into w and returns its deterministic
// headline check values — the numbers quoted alongside the rendered
// series, keyed for the bench report.
func runFig(w io.Writer, render renderer, fig int, topoCfg topology.Config, overlayFrac float64, workers int, rng *rand.Rand) (map[string]float64, error) {
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Topology = topoCfg
	sysCfg.OverlayFraction = overlayFrac
	sysCfg.ArchiveRetention = 5 * time.Minute
	sysCfg.Workers = workers

	switch fig {
	case 1:
		cfg := experiments.DefaultFig1Config()
		cfg.Workers = workers
		res, err := experiments.Fig1(cfg, rng)
		if err != nil {
			return nil, err
		}
		if err := render.series(w, "Figure 1: jump table occupancy (x = overlay N)",
			res.Analytic, res.MonteCarlo); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "worst analytic-vs-simulated mean gap: %.2f slots\n", res.MaxMeanError())
		return map[string]float64{"max_mean_error": res.MaxMeanError()}, nil

	case 2, 3:
		suppression := fig == 3
		cfg := experiments.DefaultFig23Config(suppression)
		cfg.Workers = workers
		res, err := experiments.Fig23(cfg)
		if err != nil {
			return nil, err
		}
		title := "Figure 2: density test error rates (no suppression)"
		if suppression {
			title = "Figure 3: density test error rates (suppression attacks)"
		}
		series := append(append([]experiments.Series(nil), res.FalsePositives...), res.FalseNegatives...)
		if err := render.series(w, title+" (x = gamma)", series...); err != nil {
			return nil, err
		}
		if err := render.table(w, res.SummaryTable(title+" — optimal gamma")); err != nil {
			return nil, err
		}
		sum := 0.0
		for _, y := range res.Optimal.Y {
			sum += y
		}
		return map[string]float64{"optimal_error_sum": sum}, nil

	case 4:
		cfg := experiments.Fig4Config{System: sysCfg, SampleHosts: 40}
		res, err := experiments.Fig4(cfg, rng)
		if err != nil {
			return nil, err
		}
		if err := render.series(w, "Figure 4: trees sampled vs forest coverage (x = peer trees)",
			res.Coverage, res.Vouching); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "own-tree coverage: %.1f%% (paper: ~25%%), hosts averaged: %d\n",
			100*res.OwnTreeCoverage(), res.Hosts)
		return map[string]float64{
			"own_tree_coverage": res.OwnTreeCoverage(),
			"hosts":             float64(res.Hosts),
		}, nil

	case 5:
		checks := make(map[string]float64, 4)
		for _, mal := range []float64{0, 0.2} {
			cfg := experiments.DefaultFig5Config(mal)
			cfg.System.Topology = topoCfg
			cfg.System.OverlayFraction = overlayFrac
			cfg.System.Workers = workers
			cfg.Workers = workers
			res, err := experiments.Fig5(cfg, rng)
			if err != nil {
				return nil, err
			}
			label := "Figure 5a: blame PDFs, faithful reporting"
			key := "faithful"
			if mal > 0 {
				label = "Figure 5b: blame PDFs, 20% colluding probe inversion"
				key = "collusion"
			}
			if err := render.series(w, label+" (x = blame)",
				experiments.PDFSeries("faulty nodes", res.FaultyPDF),
				experiments.PDFSeries("non-faulty nodes", res.InnocentPDF)); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "threshold %.0f%%: innocent guilty %.1f%%, faulty guilty %.1f%% (paper: %s)\n",
				100*res.Threshold, 100*res.PGood, 100*res.PFaulty, paperRates(mal))
			checks["p_good_"+key] = res.PGood
			checks["p_faulty_"+key] = res.PFaulty
		}
		return checks, nil

	case 6:
		checks := make(map[string]float64, 2)
		for _, rates := range []struct {
			label, key     string
			pGood, pFaulty float64
		}{
			{"Figure 6a: w=100, faithful reporting (p_good=1.8%, p_faulty=93.8%)", "faithful", 0.018, 0.938},
			{"Figure 6b: w=100, 20% collusion (p_good=8.4%, p_faulty=71.3%)", "collusion", 0.084, 0.713},
		} {
			cfg := experiments.DefaultFig6Config(rates.pGood, rates.pFaulty)
			cfg.Workers = workers
			res, err := experiments.Fig6(cfg)
			if err != nil {
				return nil, err
			}
			if err := render.series(w, rates.label+" (x = m)",
				res.FalsePositive, res.FalseNegative); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "minimal m with both error rates <= 1%%: %d\n", res.MinimalM)
			checks["minimal_m_"+rates.key] = float64(res.MinimalM)
		}
		return checks, nil

	case 7:
		table, reports, err := experiments.Bandwidth(experiments.DefaultBandwidthConfig())
		if err != nil {
			return nil, err
		}
		if err := render.table(w, table); err != nil {
			return nil, err
		}
		return map[string]float64{"overlay_sizes": float64(len(reports))}, nil

	case 8:
		cfg := experiments.DefaultCollusionSweepConfig()
		cfg.Base.System.Topology = topoCfg
		cfg.Base.System.OverlayFraction = overlayFrac
		cfg.Base.System.Workers = workers
		cfg.Base.Workers = workers
		cfg.Workers = workers
		res, err := experiments.CollusionSweep(cfg, rng)
		if err != nil {
			return nil, err
		}
		if err := render.series(w, "Extension: verdict quality vs colluding fraction (x = c)",
			res.PGood, res.PFault); err != nil {
			return nil, err
		}
		if err := render.table(w, res.Table()); err != nil {
			return nil, err
		}
		checks := make(map[string]float64, 2)
		for _, y := range res.PGood.Y {
			checks["pgood_sum"] += y
		}
		for _, y := range res.PFault.Y {
			checks["pfault_sum"] += y
		}
		return checks, nil

	case 9:
		model := core.DefaultOccupancyModel()
		t := experiments.Table{
			Title:   "Extension: median-consensus suppression defense (N=1131, optimal gamma per cell)",
			Columns: []string{"collusion", "standard FP", "standard FN", "consensus FP", "consensus FN"},
		}
		checks := make(map[string]float64)
		for _, c := range []float64{0.1, 0.2, 0.3, 0.4} {
			scen := core.DensityScenario{N: 1131, Collusion: c, Suppression: true}
			std, err := core.OptimalGamma(model, scen, 1.0001, 3, 150)
			if err != nil {
				return nil, err
			}
			best := core.DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
			for g := 1.01; g < 3; g += 0.01 {
				r, err := core.ConsensusErrorRates(model, scen, g)
				if err != nil {
					return nil, err
				}
				if r.Sum() < best.Sum() {
					best = r
				}
			}
			checks[fmt.Sprintf("consensus_sum_c%.0f", 100*c)] = best.Sum()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", 100*c),
				fmt.Sprintf("%.4f", std.FalsePositive),
				fmt.Sprintf("%.4f", std.FalseNegative),
				fmt.Sprintf("%.4f", best.FalsePositive),
				fmt.Sprintf("%.4f", best.FalseNegative),
			})
		}
		if err := render.table(w, t); err != nil {
			return nil, err
		}
		return checks, nil

	default:
		return nil, fmt.Errorf("unknown figure %d (valid: 1-10, 12, 13)", fig)
	}
}

func paperRates(malicious float64) string {
	if malicious > 0 {
		return "8.4% / 71.3%"
	}
	return "1.8% / 93.8%"
}
