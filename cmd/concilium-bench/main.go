// Command concilium-bench regenerates the paper's tables and figures as
// text series.
//
// Usage:
//
//	concilium-bench [-fig N] [-scale small|default|treelike|paper] [-seed N] [-format text|csv] [-workers N]
//
// Figures: 1 (occupancy model), 2 (density errors), 3 (density errors
// under suppression), 4 (forest coverage), 5 (blame PDFs + §4.3 rates),
// 6 (accusation error vs m), 7 (§4.4 bandwidth), plus two extensions:
// 8 (collusion-fraction sweep) and 9 (median-consensus suppression
// defense). -fig 0 runs the paper's seven.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"time"

	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/topology"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "concilium-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("concilium-bench", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (0 = all)")
	scale := fs.String("scale", "default", "topology scale: small, default, treelike, treelike-paper, or paper")
	seed := fs.Uint64("seed", 42, "random seed")
	format := fs.String("format", "text", "output format: text or csv")
	workers := fs.Int("workers", 0, "worker pool size for parallel trials (0 = GOMAXPROCS); results are identical for any value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var render renderer
	switch *format {
	case "text":
		render = renderer{
			series: experiments.WriteSeries,
			table: func(w io.Writer, t experiments.Table) error {
				return experiments.WriteTable(w, t)
			},
		}
	case "csv":
		render = renderer{
			series: func(w io.Writer, _ string, series ...experiments.Series) error {
				return experiments.WriteSeriesCSV(w, series...)
			},
			table: func(w io.Writer, t experiments.Table) error {
				return experiments.WriteTableCSV(w, t)
			},
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	topoCfg, overlayFrac, err := scaleConfig(*scale)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, *seed^0x9e3779b97f4a7c15))

	figs := []int{*fig}
	if *fig == 0 {
		figs = []int{1, 2, 3, 4, 5, 6, 7}
	}
	for _, f := range figs {
		start := time.Now()
		if err := runFig(w, render, f, topoCfg, overlayFrac, *workers, rng); err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
		if *format == "text" {
			fmt.Fprintf(w, "(figure %d regenerated in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// renderer abstracts the output format.
type renderer struct {
	series func(io.Writer, string, ...experiments.Series) error
	table  func(io.Writer, experiments.Table) error
}

func scaleConfig(scale string) (topology.Config, float64, error) {
	switch scale {
	case "small":
		return topology.TestConfig(), 0.5, nil
	case "default":
		return topology.DefaultConfig(), 0.03, nil
	case "treelike":
		// Path-convergent variant matching the paper's Figure 4 coverage.
		return topology.TreelikeConfig(), 0.03, nil
	case "treelike-paper":
		return topology.TreelikePaperConfig(), 0.03, nil
	case "paper":
		return topology.PaperConfig(), 0.03, nil
	default:
		return topology.Config{}, 0, fmt.Errorf("unknown scale %q", scale)
	}
}

func runFig(w io.Writer, render renderer, fig int, topoCfg topology.Config, overlayFrac float64, workers int, rng *rand.Rand) error {
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Topology = topoCfg
	sysCfg.OverlayFraction = overlayFrac
	sysCfg.ArchiveRetention = 5 * time.Minute
	sysCfg.Workers = workers

	switch fig {
	case 1:
		cfg := experiments.DefaultFig1Config()
		cfg.Workers = workers
		res, err := experiments.Fig1(cfg, rng)
		if err != nil {
			return err
		}
		if err := render.series(w, "Figure 1: jump table occupancy (x = overlay N)",
			res.Analytic, res.MonteCarlo); err != nil {
			return err
		}
		fmt.Fprintf(w, "worst analytic-vs-simulated mean gap: %.2f slots\n", res.MaxMeanError())
		return nil

	case 2, 3:
		suppression := fig == 3
		cfg := experiments.DefaultFig23Config(suppression)
		cfg.Workers = workers
		res, err := experiments.Fig23(cfg)
		if err != nil {
			return err
		}
		title := "Figure 2: density test error rates (no suppression)"
		if suppression {
			title = "Figure 3: density test error rates (suppression attacks)"
		}
		series := append(append([]experiments.Series(nil), res.FalsePositives...), res.FalseNegatives...)
		if err := render.series(w, title+" (x = gamma)", series...); err != nil {
			return err
		}
		return render.table(w, res.SummaryTable(title+" — optimal gamma"))

	case 4:
		cfg := experiments.Fig4Config{System: sysCfg, SampleHosts: 40}
		res, err := experiments.Fig4(cfg, rng)
		if err != nil {
			return err
		}
		if err := render.series(w, "Figure 4: trees sampled vs forest coverage (x = peer trees)",
			res.Coverage, res.Vouching); err != nil {
			return err
		}
		fmt.Fprintf(w, "own-tree coverage: %.1f%% (paper: ~25%%), hosts averaged: %d\n",
			100*res.OwnTreeCoverage(), res.Hosts)
		return nil

	case 5:
		for _, mal := range []float64{0, 0.2} {
			cfg := experiments.DefaultFig5Config(mal)
			cfg.System.Topology = topoCfg
			cfg.System.OverlayFraction = overlayFrac
			cfg.System.Workers = workers
			cfg.Workers = workers
			res, err := experiments.Fig5(cfg, rng)
			if err != nil {
				return err
			}
			label := "Figure 5a: blame PDFs, faithful reporting"
			if mal > 0 {
				label = "Figure 5b: blame PDFs, 20% colluding probe inversion"
			}
			if err := render.series(w, label+" (x = blame)",
				experiments.PDFSeries("faulty nodes", res.FaultyPDF),
				experiments.PDFSeries("non-faulty nodes", res.InnocentPDF)); err != nil {
				return err
			}
			fmt.Fprintf(w, "threshold %.0f%%: innocent guilty %.1f%%, faulty guilty %.1f%% (paper: %s)\n",
				100*res.Threshold, 100*res.PGood, 100*res.PFaulty, paperRates(mal))
		}
		return nil

	case 6:
		for _, rates := range []struct {
			label          string
			pGood, pFaulty float64
		}{
			{"Figure 6a: w=100, faithful reporting (p_good=1.8%, p_faulty=93.8%)", 0.018, 0.938},
			{"Figure 6b: w=100, 20% collusion (p_good=8.4%, p_faulty=71.3%)", 0.084, 0.713},
		} {
			cfg := experiments.DefaultFig6Config(rates.pGood, rates.pFaulty)
			cfg.Workers = workers
			res, err := experiments.Fig6(cfg)
			if err != nil {
				return err
			}
			if err := render.series(w, rates.label+" (x = m)",
				res.FalsePositive, res.FalseNegative); err != nil {
				return err
			}
			fmt.Fprintf(w, "minimal m with both error rates <= 1%%: %d\n", res.MinimalM)
		}
		return nil

	case 7:
		table, _, err := experiments.Bandwidth(experiments.DefaultBandwidthConfig())
		if err != nil {
			return err
		}
		return render.table(w, table)

	case 8:
		cfg := experiments.DefaultCollusionSweepConfig()
		cfg.Base.System.Topology = topoCfg
		cfg.Base.System.OverlayFraction = overlayFrac
		cfg.Base.System.Workers = workers
		cfg.Base.Workers = workers
		cfg.Workers = workers
		res, err := experiments.CollusionSweep(cfg, rng)
		if err != nil {
			return err
		}
		if err := render.series(w, "Extension: verdict quality vs colluding fraction (x = c)",
			res.PGood, res.PFault); err != nil {
			return err
		}
		return render.table(w, res.Table())

	case 9:
		model := core.DefaultOccupancyModel()
		t := experiments.Table{
			Title:   "Extension: median-consensus suppression defense (N=1131, optimal gamma per cell)",
			Columns: []string{"collusion", "standard FP", "standard FN", "consensus FP", "consensus FN"},
		}
		for _, c := range []float64{0.1, 0.2, 0.3, 0.4} {
			scen := core.DensityScenario{N: 1131, Collusion: c, Suppression: true}
			std, err := core.OptimalGamma(model, scen, 1.0001, 3, 150)
			if err != nil {
				return err
			}
			best := core.DensityErrorRates{FalsePositive: 1, FalseNegative: 1}
			for g := 1.01; g < 3; g += 0.01 {
				r, err := core.ConsensusErrorRates(model, scen, g)
				if err != nil {
					return err
				}
				if r.Sum() < best.Sum() {
					best = r
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", 100*c),
				fmt.Sprintf("%.4f", std.FalsePositive),
				fmt.Sprintf("%.4f", std.FalseNegative),
				fmt.Sprintf("%.4f", best.FalsePositive),
				fmt.Sprintf("%.4f", best.FalseNegative),
			})
		}
		return render.table(w, t)

	default:
		return fmt.Errorf("unknown figure %d (valid: 1-9)", fig)
	}
}

func paperRates(malicious float64) string {
	if malicious > 0 {
		return "8.4% / 71.3%"
	}
	return "1.8% / 93.8%"
}
