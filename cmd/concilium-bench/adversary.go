package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"concilium/internal/adversary"
	"concilium/internal/benchreport"
	"concilium/internal/experiments"
)

// The Adversary figure (-fig 12) runs the full adversarial campaign
// grid (strategy × attacker fraction) and reports each cell's ROC
// operating point: attacker conviction rate vs. honest
// false-conviction rate, plus the reputation fallback's quorum
// outcomes. Its checks are the per-cell rates, so the benchdiff
// -figures gate pins conviction power exactly, and the campaign's own
// invariants (ROC separation, honest-conviction bound, overlay still
// routing) gate the run itself.
const adversaryFig = 12

// runAdversaryFig executes the campaign and returns its benchreport
// figure alongside the report for rendering. A failed invariant is an
// error: the figure must not land in a report looking like a
// measurement when the protocol's defenses did not hold.
func runAdversaryFig(seed uint64, workers int) (benchreport.Figure, *adversary.Report, error) {
	cfg := adversary.ShortConfig(seed)
	cfg.Workers = workers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := adversary.Run(cfg)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchreport.Figure{}, nil, err
	}
	checks := map[string]float64{
		"cells":         float64(len(rep.Cells)),
		"invariants_ok": boolToF(rep.Passed()),
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		key := fmt.Sprintf("%s_f%02.0f", c.Strategy, 100*c.Fraction)
		checks["att_"+key] = c.Op.AttackerRate
		checks["hon_"+key] = c.Op.HonestRate
	}
	fig := benchreport.Figure{
		Name:   "adversary",
		Checks: checks,
		Timing: benchreport.Timing{
			WallNs:      wall.Nanoseconds(),
			NsPerOp:     perOp(wall.Nanoseconds(), int64(len(rep.Cells))),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(len(rep.Cells)),
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(len(rep.Cells)),
			Ops:         int64(len(rep.Cells)),
		},
	}
	if !rep.Passed() {
		return fig, rep, fmt.Errorf("adversary campaign violated invariants:\n%s", rep)
	}
	return fig, rep, nil
}

// adversaryTable renders the campaign's operating points for text/csv
// mode: one row per (strategy, fraction) cell.
func adversaryTable(rep *adversary.Report) experiments.Table {
	t := experiments.Table{
		Title: "Figure 12: adversarial conviction ROC operating points (strategy x attacker fraction)",
		Columns: []string{
			"strategy", "f", "attackers", "att conviction", "honest false-conv",
			"rep attacker", "rep honest", "repo rejections", "suspected",
		},
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		t.Rows = append(t.Rows, []string{
			c.Strategy,
			fmt.Sprintf("%.2f", c.Fraction),
			fmt.Sprintf("%d/%d", c.Attackers, c.Nodes),
			fmt.Sprintf("%.3f", c.Op.AttackerRate),
			fmt.Sprintf("%.3f", c.Op.HonestRate),
			fmt.Sprintf("%.3f", c.RepAttackerRate),
			fmt.Sprintf("%.3f", c.RepHonestRate),
			fmt.Sprintf("%d", c.Rejections.Total()),
			fmt.Sprintf("%d", c.Suspected),
		})
	}
	return t
}

// runAdversaryText is the text/csv-mode path: render the operating
// points and the invariant list.
func runAdversaryText(w io.Writer, render renderer, seed uint64, workers int) error {
	_, rep, err := runAdversaryFig(seed, workers)
	if err != nil {
		return err
	}
	if err := render.table(w, adversaryTable(rep)); err != nil {
		return err
	}
	for _, inv := range rep.Invariants {
		status := "ok"
		if !inv.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "invariant [%s] %s\n", status, inv.Name)
	}
	return nil
}
