package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"concilium/internal/benchreport"
	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/parexec"
	"concilium/internal/profiling"
	"concilium/internal/topology"
)

// The Scale figure (-fig 10) benchmarks system construction itself:
// one BuildCompactSystem per requested overlay size, reporting wall
// time, per-node build cost, peak RSS, resident bytes per node, and the
// speedup of the configured worker count over a serial reference build.
// Its deterministic checks include a canonical-snapshot hash, so the
// benchdiff -canonical gate proves builds are byte-identical across
// worker counts. The compact core is what moves the frontier: the
// legacy per-node representation topped out around N=20k in a CI-sized
// memory budget, while the struct-of-arrays build reaches N=1M.
const scaleFig = 10

// parseScaleNs parses the -scale-n flag: a comma-separated list of
// overlay node counts, returned ascending so the process-lifetime peak
// RSS counter is attributable to each size as it runs.
func parseScaleNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 8 {
			return nil, fmt.Errorf("bad -scale-n entry %q (want integers >= 8)", p)
		}
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns, nil
}

// scaleTopology sizes a transit-stub graph to yield about 2n end hosts,
// so the 0.5 overlay fraction lands near n overlay nodes. The core is
// fixed; only the stub count grows with n, which keeps BFS depth and
// routing structure comparable across sizes.
func scaleTopology(n int) topology.Config {
	// Expected end hosts per unit of StubsPerTransitRouter:
	// TransitDomains * RoutersPerTransitDomain * MeanRoutersPerStub.
	const hostsPerSPT = 4 * 10 * 6
	spt := (2*n + hostsPerSPT - 1) / hostsPerSPT
	if spt < 1 {
		spt = 1
	}
	return topology.Config{
		TransitDomains:          4,
		RoutersPerTransitDomain: 10,
		TransitChordsPerRouter:  1,
		InterDomainLinks:        2,
		StubsPerTransitRouter:   spt,
		MeanRoutersPerStub:      6,
		StubChordFraction:       0.2,
		StubMultihomeFraction:   0.1,
		HostsPerStubRouter:      1.0,
	}
}

func scaleSystemConfig(n, workers int) core.SystemConfig {
	cfg := core.DefaultSystemConfig()
	cfg.Topology = scaleTopology(n)
	cfg.OverlayFraction = 0.5
	cfg.Workers = workers
	return cfg
}

// measureScaleBuild runs one BuildCompactSystem and returns its
// deterministic checks and timing envelope. The canonical hash is the
// compact core's index-based snapshot (trees excluded — they are
// derived on demand), folded to 53 bits so it survives the float64
// check channel exactly; it was re-pinned when the figure moved off
// BuildSystem, with TestCompactSystemMatchesLegacyBuild carrying the
// equivalence lineage across the re-pin.
func measureScaleBuild(n, workers int, rng *rand.Rand) (map[string]float64, benchreport.Timing, error) {
	cfg := scaleSystemConfig(n, workers)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sys, err := core.BuildCompactSystem(cfg, rng)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, benchreport.Timing{}, err
	}
	nodes := int64(sys.Size())
	checks := map[string]float64{
		"overlay_n":      float64(nodes),
		"routers":        float64(sys.Topo.NumRouters()),
		"links":          float64(sys.Topo.NumLinks()),
		"canonical_hash": float64(sys.CanonicalHash() & (1<<53 - 1)),
	}
	t := benchreport.Timing{
		WallNs:       wall.Nanoseconds(),
		NsPerOp:      perOp(wall.Nanoseconds(), nodes),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / nodes,
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / nodes,
		Ops:          nodes,
		PeakRSSBytes: profiling.PeakRSSBytes(),
		BytesPerNode: sys.Footprint() / nodes,
	}
	return checks, t, nil
}

// runScale measures every requested size (ascending) and returns one
// figure per size. Each size draws a fresh substream keyed by the size
// itself, so a 1k-only CI run and a full 1k/5k/20k run produce the same
// scale-n1000 checks for the same seed — regardless of -workers, which
// the internal serial reference asserts.
func runScale(w io.Writer, ns []int, root parexec.Seed, workers int) ([]benchreport.Figure, error) {
	resolved := parexec.Workers(workers)
	seed := root.Sub(scaleFig)
	figs := make([]benchreport.Figure, 0, len(ns))
	for _, n := range ns {
		measure := func(nWorkers int) (map[string]float64, benchreport.Timing, error) {
			return measureScaleBuild(n, nWorkers, seed.Stream(uint64(n)))
		}
		checks, timing, err := measure(resolved)
		if err != nil {
			return nil, fmt.Errorf("scale-n%d: %w", n, err)
		}
		timing.SpeedupX = 1
		if resolved != 1 {
			serialChecks, serialTiming, err := measure(1)
			if err != nil {
				return nil, fmt.Errorf("scale-n%d (serial reference): %w", n, err)
			}
			if !checksEqual(checks, serialChecks) {
				return nil, fmt.Errorf("scale-n%d: build diverges between workers=1 and workers=%d: %v vs %v",
					n, resolved, serialChecks, checks)
			}
			if timing.WallNs > 0 {
				timing.SpeedupX = float64(serialTiming.WallNs) / float64(timing.WallNs)
			}
		}
		figs = append(figs, benchreport.Figure{
			Name:   fmt.Sprintf("scale-n%d", n),
			Checks: checks,
			Timing: timing,
		})
		fmt.Fprintf(w, "scale-n%d: %v build, %d nodes, %d bytes/node resident, %d allocs/node (speedup %.2fx at %d workers)\n",
			n, time.Duration(timing.WallNs).Round(time.Millisecond), timing.Ops,
			timing.BytesPerNode, timing.AllocsPerOp, timing.SpeedupX, resolved)
	}
	return figs, nil
}

// scaleTable renders the Scale figures for text/csv mode.
func scaleTable(figs []benchreport.Figure) experiments.Table {
	t := experiments.Table{
		Title:   "Figure 10: BuildCompactSystem scale (ascending overlay N)",
		Columns: []string{"overlay N", "wall", "ns/node", "bytes/node", "allocs/node", "peak RSS MiB", "speedup-x"},
	}
	for _, f := range figs {
		t.Rows = append(t.Rows, []string{
			strconv.FormatInt(f.Timing.Ops, 10),
			time.Duration(f.Timing.WallNs).Round(time.Millisecond).String(),
			strconv.FormatInt(f.Timing.NsPerOp, 10),
			strconv.FormatInt(f.Timing.BytesPerNode, 10),
			strconv.FormatInt(f.Timing.AllocsPerOp, 10),
			fmt.Sprintf("%.1f", float64(f.Timing.PeakRSSBytes)/(1<<20)),
			fmt.Sprintf("%.2f", f.Timing.SpeedupX),
		})
	}
	return t
}
