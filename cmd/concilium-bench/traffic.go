package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"strconv"
	"time"

	"concilium/internal/benchreport"
	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/id"
	"concilium/internal/parexec"
	"concilium/internal/profiling"
)

// The Traffic figure (-fig 13) benchmarks the diagnosis protocol itself
// at the compact core's scale: stewarded SendMessage traffic — with
// malicious droppers, per-hop blame, verdict windows, and accusation
// chains live — against a system of the -traffic-n overlay sizes. The
// legacy pointer-per-node plane capped this experiment near N=20k; the
// index-based traffic plane (DESIGN.md §13) runs it at N=100k on one
// core, which is the claim this figure gates in CI.
const trafficFig = 13

// trafficEndpoints bounds the src/dst pool. Concentrating traffic on a
// fixed pool keeps the steward working set (and so the lazily built
// tomography-tree population) bounded at large N, the way a real
// workload's hot pairs would.
const trafficEndpoints = 64

// trafficBatch is the number of endpoint picks per pass.
const trafficBatch = 512

// trafficStats are the deterministic outcome counts of one batch.
type trafficStats struct {
	sent, delivered, nodeDrops, culpritRight, netBlamed, chains int64
}

// runTrafficBatch drives one batch of stewarded messages between pool
// endpoints, pacing 100ms of virtual time between sends so the sampled
// probing load runs concurrently with the traffic. The pick sequence is
// derived only from the batch seed, so a second call replays exactly
// the same pairs.
func runTrafficBatch(cs *core.CompactSystem, pool []id.ID, seed uint64, st *trafficStats) error {
	pick := rand.New(rand.NewPCG(seed, seed^0x7472616666696331))
	for m := 0; m < trafficBatch; m++ {
		a, b := pick.IntN(len(pool)), pick.IntN(len(pool))
		if a == b {
			continue
		}
		rep, err := cs.SendMessage(pool[a], pool[b])
		if err != nil {
			return err
		}
		st.sent++
		if rep.Delivered && rep.AckReceived {
			st.delivered++
		}
		if rep.Kind == core.DropByNode {
			st.nodeDrops++
			if rep.Culprit == rep.DroppedBy {
				st.culpritRight++
			}
		}
		if rep.NetworkBlamed {
			st.netBlamed++
		}
		if rep.Chain != nil {
			st.chains++
		}
		cs.Run(100 * time.Millisecond)
	}
	return nil
}

// measureTraffic builds one compact system, warms it with probing and a
// cold traffic pass, then measures a warm pass over the identical pair
// sequence. The cold pass materializes every steward tree the route set
// touches (the lazy-tree first-touch cost); the warm pass is the
// sustained protocol-op measurement the timing envelope reports —
// ns/msg and allocs/msg with all trees cached, which is the steady
// state of a long-running deployment. Probing is a strided ~1k-node
// sample: full-population probing at N=100k would dominate the run
// without changing what the message path measures, and the link-failure
// injector stays off for the same reason (its candidate set would
// materialize every tree; chaos campaigns cover link faults at small N).
func measureTraffic(n, workers int, rng *rand.Rand) (map[string]float64, benchreport.Timing, error) {
	cfg := scaleSystemConfig(n, workers)
	cfg.MaliciousFraction = 0.1
	cfg.ArchiveRetention = 5 * time.Minute
	cs, err := core.BuildCompactSystem(cfg, rng)
	if err != nil {
		return nil, benchreport.Timing{}, err
	}
	sampleK := 1024
	if s := cs.Size(); sampleK > s {
		sampleK = s
	}
	probers, err := cs.StartProbingSample(sampleK)
	if err != nil {
		return nil, benchreport.Timing{}, err
	}
	cs.Run(5 * time.Minute)

	pool := make([]id.ID, 0, trafficEndpoints)
	stride := len(probers) / trafficEndpoints
	if stride < 1 {
		stride = 1
	}
	for at := 0; at < len(probers) && len(pool) < trafficEndpoints; at += stride {
		pool = append(pool, probers[at])
	}

	var cold trafficStats
	if err := runTrafficBatch(cs, pool, uint64(n), &cold); err != nil {
		return nil, benchreport.Timing{}, err
	}
	var warm trafficStats
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := runTrafficBatch(cs, pool, uint64(n), &warm); err != nil {
		return nil, benchreport.Timing{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	checks := map[string]float64{
		"overlay_n":          float64(cs.Size()),
		"cold_sent":          float64(cold.sent),
		"cold_delivered":     float64(cold.delivered),
		"warm_sent":          float64(warm.sent),
		"warm_delivered":     float64(warm.delivered),
		"warm_node_drops":    float64(warm.nodeDrops),
		"warm_culprit_right": float64(warm.culpritRight),
		"warm_net_blamed":    float64(warm.netBlamed),
		"warm_chains":        float64(warm.chains),
		"archive_records":    float64(cs.Archive.Size()),
	}
	t := benchreport.Timing{
		WallNs:       wall.Nanoseconds(),
		NsPerOp:      perOp(wall.Nanoseconds(), warm.sent),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / warm.sent,
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / warm.sent,
		Ops:          warm.sent,
		PeakRSSBytes: profiling.PeakRSSBytes(),
		BytesPerNode: cs.Footprint() / int64(cs.Size()),
	}
	return checks, t, nil
}

// runTraffic measures every requested size (ascending) and returns one
// figure per size. Like the Scale figure, each size draws a fresh
// substream keyed by the size itself, so a 100k-only CI run and a full
// ladder produce identical traffic-n100000 checks for the same seed —
// regardless of -workers, which the internal serial reference asserts.
func runTraffic(w io.Writer, ns []int, root parexec.Seed, workers int) ([]benchreport.Figure, error) {
	resolved := parexec.Workers(workers)
	seed := root.Sub(trafficFig)
	figs := make([]benchreport.Figure, 0, len(ns))
	for _, n := range ns {
		measure := func(nWorkers int) (map[string]float64, benchreport.Timing, error) {
			return measureTraffic(n, nWorkers, seed.Stream(uint64(n)))
		}
		checks, timing, err := measure(resolved)
		if err != nil {
			return nil, fmt.Errorf("traffic-n%d: %w", n, err)
		}
		timing.SpeedupX = 1
		if resolved != 1 {
			serialChecks, serialTiming, err := measure(1)
			if err != nil {
				return nil, fmt.Errorf("traffic-n%d (serial reference): %w", n, err)
			}
			if !checksEqual(checks, serialChecks) {
				return nil, fmt.Errorf("traffic-n%d: outcomes diverge between workers=1 and workers=%d: %v vs %v",
					n, resolved, serialChecks, checks)
			}
			if timing.WallNs > 0 {
				timing.SpeedupX = float64(serialTiming.WallNs) / float64(timing.WallNs)
			}
		}
		figs = append(figs, benchreport.Figure{
			Name:   fmt.Sprintf("traffic-n%d", n),
			Checks: checks,
			Timing: timing,
		})
		fmt.Fprintf(w, "traffic-n%d: %d msgs in %v warm (%d ns/msg, %d allocs/msg), %d delivered, %d node drops (%d culprit-correct)\n",
			n, timing.Ops, time.Duration(timing.WallNs).Round(time.Millisecond), timing.NsPerOp, timing.AllocsPerOp,
			int64(checks["warm_delivered"]), int64(checks["warm_node_drops"]), int64(checks["warm_culprit_right"]))
	}
	return figs, nil
}

// trafficTable renders the Traffic figures for text/csv mode.
func trafficTable(figs []benchreport.Figure) experiments.Table {
	t := experiments.Table{
		Title:   "Figure 13: compact-plane diagnosis traffic (warm pass, ascending overlay N)",
		Columns: []string{"overlay N", "msgs", "wall", "ns/msg", "allocs/msg", "delivered", "node drops", "culprit ok", "peak RSS MiB"},
	}
	for _, f := range figs {
		t.Rows = append(t.Rows, []string{
			strconv.FormatInt(int64(f.Checks["overlay_n"]), 10),
			strconv.FormatInt(f.Timing.Ops, 10),
			time.Duration(f.Timing.WallNs).Round(time.Millisecond).String(),
			strconv.FormatInt(f.Timing.NsPerOp, 10),
			strconv.FormatInt(f.Timing.AllocsPerOp, 10),
			strconv.FormatInt(int64(f.Checks["warm_delivered"]), 10),
			strconv.FormatInt(int64(f.Checks["warm_node_drops"]), 10),
			strconv.FormatInt(int64(f.Checks["warm_culprit_right"]), 10),
			fmt.Sprintf("%.1f", float64(f.Timing.PeakRSSBytes)/(1<<20)),
		})
	}
	return t
}
