package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallScale(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scale", "small", "-hops"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"routers:", "links:", "end hosts:", "degree histogram", "host-to-host hops"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	t.Parallel()
	var a, b bytes.Buffer
	if err := run(&a, []string{"-scale", "small", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, []string{"-scale", "small", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different topology summaries")
	}
}
