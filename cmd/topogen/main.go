// Command topogen generates and inspects the synthetic transit-stub
// topologies that stand in for the paper's SCAN Internet map. It prints
// summary statistics (router/link counts, degree distribution, end-host
// population) so a configuration can be checked against the target
// scale before running the heavier experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"

	"concilium/internal/topology"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	scale := fs.String("scale", "default", "preset: small, default, or paper")
	seed := fs.Uint64("seed", 1, "random seed")
	hops := fs.Bool("hops", false, "also sample end-host path lengths")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg topology.Config
	switch *scale {
	case "small":
		cfg = topology.TestConfig()
	case "default":
		cfg = topology.DefaultConfig()
	case "paper":
		cfg = topology.PaperConfig()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	rng := rand.New(rand.NewPCG(*seed, *seed*2+1))
	g, err := topology.Generate(cfg, rng)
	if err != nil {
		return err
	}
	hosts := g.EndHosts()
	fmt.Fprintf(w, "routers:    %d\n", g.NumRouters())
	fmt.Fprintf(w, "links:      %d\n", g.NumLinks())
	fmt.Fprintf(w, "links/router: %.3f (SCAN map: 1.608)\n",
		float64(g.NumLinks())/float64(g.NumRouters()))
	fmt.Fprintf(w, "end hosts:  %d (degree-1 routers)\n", len(hosts))
	fmt.Fprintf(w, "3%% overlay sample: %d nodes (paper: 1131)\n", int(0.03*float64(len(hosts))))

	// Degree distribution.
	hist := map[int]int{}
	maxDeg := 0
	for r := 0; r < g.NumRouters(); r++ {
		d := g.Degree(topology.RouterID(r))
		hist[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Fprintln(w, "degree histogram (degree: routers):")
	for d := 1; d <= maxDeg && d <= 12; d++ {
		if hist[d] > 0 {
			fmt.Fprintf(w, "  %2d: %d\n", d, hist[d])
		}
	}
	var tail int
	for d := 13; d <= maxDeg; d++ {
		tail += hist[d]
	}
	if tail > 0 {
		fmt.Fprintf(w, "  13+: %d\n", tail)
	}

	if *hops && len(hosts) >= 2 {
		tree, err := g.BFS(hosts[0])
		if err != nil {
			return err
		}
		var sum, n, max int
		for i := 1; i < len(hosts) && n < 2000; i += 7 {
			h := tree.HopCount(hosts[i])
			if h < 0 {
				continue
			}
			sum += h
			n++
			if h > max {
				max = h
			}
		}
		if n > 0 {
			fmt.Fprintf(w, "host-to-host hops (sampled %d): mean %.1f, max %d\n",
				n, float64(sum)/float64(n), max)
		}
	}
	return nil
}
