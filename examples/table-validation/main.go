// Table validation: catching fraudulent routing adverts (§3.1, §4.1).
//
// Concilium only works if peers cannot lie about their routing state.
// This example exercises each defense in turn: the jump-table density
// test against a suppression-style sparse advert, the freshness
// timestamps against an inflation attack that reuses a departed peer's
// identity, the signature check against outright forgery, and finally
// the analytic error-rate machinery that picks the test's γ.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/sigcrypto"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	rng := rand.New(rand.NewPCG(51, 61))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	now := netsim.Time(0).Add(10 * time.Minute)
	sys.Run(10 * time.Minute)

	verifier := sys.Nodes[sys.Order[0]]
	advertiser := sys.Nodes[sys.Order[1]]
	localOcc := verifier.Routing.Secure.Occupancy()
	localSpacing, err := verifier.Routing.Leaf.MeanSpacing()
	if err != nil {
		log.Fatal(err)
	}

	gamma := 1.15
	test, err := core.NewDensityTest(gamma)
	if err != nil {
		log.Fatal(err)
	}
	validator := &core.SnapshotValidator{
		Keys:             sys.Keys(),
		MaxEntryAge:      3 * time.Minute,
		JumpTest:         test,
		LocalOccupancy:   localOcc,
		LeafGamma:        2.0,
		LocalLeafSpacing: localSpacing,
	}
	fmt.Printf("verifier %s: %d occupied jump-table slots, gamma=%.2f\n\n",
		verifier.ID().Short(), localOcc, gamma)

	peerKeys := func(p id.ID) (sigcrypto.KeyPair, bool) {
		n, ok := sys.Nodes[p]
		if !ok {
			return sigcrypto.KeyPair{}, false
		}
		return n.Keys, true
	}

	// 1. Honest advert passes every check.
	entries, err := advertiser.BuildAdvert(int64(now), peerKeys)
	if err != nil {
		log.Fatal(err)
	}
	snap := &core.Snapshot{Prober: advertiser.ID(), At: now, Entries: entries, LeafSpacing: localSpacing}
	snap.Sign(advertiser.Keys)
	fmt.Printf("1. honest advert (%d entries): %s\n", len(entries), outcome(validator.Validate(snap)))

	// 2. Suppression-style sparse advert: hide most peers.
	sparse := &core.Snapshot{Prober: advertiser.ID(), At: now, Entries: entries[:len(entries)/3], LeafSpacing: localSpacing}
	sparse.Sign(advertiser.Keys)
	err = validator.Validate(sparse)
	fmt.Printf("2. sparse advert (%d entries): %s (want density failure: %v)\n",
		len(sparse.Entries), outcome(err), errors.Is(err, core.ErrTableTooSparse))

	// 3. Inflation attack: pad the table with a stale timestamp from a
	// long-departed peer.
	ghost := sys.Nodes[sys.Order[2]]
	staleTS := sigcrypto.NewTimestamp(ghost.Keys, ghost.ID(), int64(now.Add(-2*time.Hour)))
	inflated := &core.Snapshot{
		Prober:      advertiser.ID(),
		At:          now,
		Entries:     append(append([]core.AdvertEntry(nil), entries...), core.AdvertEntry{Peer: ghost.ID(), Freshness: staleTS}),
		LeafSpacing: localSpacing,
	}
	inflated.Sign(advertiser.Keys)
	err = validator.Validate(inflated)
	fmt.Printf("3. inflation with stale timestamp: %s (want staleness failure: %v)\n",
		outcome(err), errors.Is(err, core.ErrStaleEntry))

	// 4. Forged freshness: the advertiser signs the ghost's timestamp
	// itself, lacking the ghost's private key.
	forgedTS := sigcrypto.NewTimestamp(advertiser.Keys, ghost.ID(), int64(now.Add(-time.Minute)))
	forged := &core.Snapshot{
		Prober:      advertiser.ID(),
		At:          now,
		Entries:     append(append([]core.AdvertEntry(nil), entries...), core.AdvertEntry{Peer: ghost.ID(), Freshness: forgedTS}),
		LeafSpacing: localSpacing,
	}
	forged.Sign(advertiser.Keys)
	err = validator.Validate(forged)
	fmt.Printf("4. forged freshness signature: %s (want signature failure: %v)\n",
		outcome(err), errors.Is(err, core.ErrBadEntrySignature))

	// 5. Leaf-set suppression: advertise implausibly wide leaf spacing.
	wide := &core.Snapshot{Prober: advertiser.ID(), At: now, Entries: entries, LeafSpacing: 5 * localSpacing}
	wide.Sign(advertiser.Keys)
	err = validator.Validate(wide)
	fmt.Printf("5. sparse leaf set: %s (want leaf density failure: %v)\n\n",
		outcome(err), errors.Is(err, core.ErrLeafSetTooSparse))

	// 6. The analytics behind choosing gamma (Figure 2/3 machinery).
	model := core.DefaultOccupancyModel()
	for _, c := range []float64{0.2, 0.3} {
		plain, err := core.OptimalGamma(model, core.DensityScenario{N: 1131, Collusion: c}, 1.001, 2.5, 120)
		if err != nil {
			log.Fatal(err)
		}
		sup, err := core.OptimalGamma(model, core.DensityScenario{N: 1131, Collusion: c, Suppression: true}, 1.001, 2.5, 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("6. c=%.0f%%: optimal gamma %.2f -> FP %.1f%%, FN %.1f%%; under suppression FP %.1f%%, FN %.1f%%\n",
			100*c, plain.Gamma, 100*plain.FalsePositive, 100*plain.FalseNegative,
			100*sup.FalsePositive, 100*sup.FalseNegative)
	}
}

func outcome(err error) string {
	if err == nil {
		return "ACCEPTED"
	}
	return "REJECTED"
}
