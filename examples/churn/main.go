// Churn: diagnosis keeps working while the overlay population moves.
//
// The paper's evaluation freezes membership to isolate the inference
// algorithm (§4.2); a deployment cannot. This example fails and joins
// nodes mid-run and shows three things surviving: every survivor's
// secure routing state stays exactly what a from-scratch fill would
// build, the accusation DHT re-homes its records onto the new replica
// sets, and a dropper is still correctly blamed after the shuffle.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	rng := rand.New(rand.NewPCG(91, 97))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		log.Fatal(err)
	}
	sys.Run(5 * time.Minute)
	fmt.Printf("overlay: %d nodes; archive: %d probe records\n", len(sys.Order), sys.Archive.Size())

	// An accusation published before the churn.
	store, err := dht.New(sys.Ring, dht.DefaultReplicas)
	if err != nil {
		log.Fatal(err)
	}
	repo, err := dht.NewAccusationRepo(store, sys.Keys(), cfg.Blame.GuiltyThreshold)
	if err != nil {
		log.Fatal(err)
	}
	src, dst, route := findRoute(sys)
	dropper := route[1]
	sys.Nodes[dropper].Behavior = core.Behavior{DropsMessages: true}
	rep, err := sys.SendMessage(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Chain == nil {
		log.Fatal("expected an accusation chain")
	}
	if err := repo.Publish(rep.Chain); err != nil {
		log.Fatal(err)
	}
	n, _ := repo.Count(dropper)
	fmt.Printf("dropper %s accused; DHT holds %d record(s)\n\n", dropper.Short(), n)

	// Churn: fail three nodes (never the parties above), join two.
	failed := 0
	for _, nid := range sys.Order {
		if failed == 3 {
			break
		}
		if nid == src || nid == dst || nid == dropper {
			continue
		}
		if err := sys.FailNode(nid); err != nil {
			log.Fatal(err)
		}
		failed++
	}
	joined := 0
	used := map[topology.RouterID]bool{}
	for _, nid := range sys.Order {
		used[sys.Nodes[nid].Router] = true
	}
	for _, h := range sys.Topo.EndHosts() {
		if joined == 2 {
			break
		}
		if used[h] {
			continue
		}
		if _, err := sys.JoinNode(h); err != nil {
			log.Fatal(err)
		}
		joined++
	}
	fmt.Printf("churn: %d failed, %d joined -> %d nodes\n", failed, joined, len(sys.Order))

	// The DHT re-homes onto the new membership.
	if err := store.Rebalance(sys.Ring); err != nil {
		log.Fatal(err)
	}
	n, err = repo.Count(dropper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accusations surviving rebalance: %d\n", n)

	// Diagnosis still lands on the dropper after the shuffle.
	sys.Run(3 * time.Minute) // fresh probes over rebuilt trees
	rep, err = sys.SendMessage(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Delivered {
		fmt.Println("note: the new route avoids the dropper entirely")
	} else {
		fmt.Printf("post-churn culprit: %s (ground truth %s, correct: %v)\n",
			rep.Culprit.Short(), dropper.Short(), rep.Culprit == dropper)
	}
}

func findRoute(sys *core.System) (src, dst id.ID, route []id.ID) {
	for _, a := range sys.Order {
		for _, b := range sys.Order {
			if a == b {
				continue
			}
			rep, err := sys.SendMessage(a, b)
			if err != nil || len(rep.Route) < 3 {
				continue
			}
			return a, b, rep.Route
		}
	}
	panic("no multi-hop route; try another seed")
}
