// Tomography coverage: what a host learns about its forest (§3.2, §4.2).
//
// A host H can directly probe only its own tree T_H — about a quarter of
// the IP links its peers' forwarding paths traverse. This example shows
// coverage growing as H incorporates peers' disseminated snapshots, then
// runs a full heavyweight striped-unicast measurement on one tree and
// localizes an injected lossy link with the MLE estimator.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/experiments"
	"concilium/internal/netsim"
	"concilium/internal/tomography"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewPCG(31, 41))

	// Part 1: forest coverage vs number of included peer trees.
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	res, err := experiments.Fig4(experiments.Fig4Config{System: cfg, SampleHosts: 15}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forest link coverage as peer trees are incorporated:")
	step := len(res.Coverage.X) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Coverage.X); i += step {
		fmt.Printf("  %2.0f peer trees: %5.1f%% of forest links, %.1f vouching trees/link\n",
			res.Coverage.X[i], 100*res.Coverage.Y[i], res.Vouching.Y[i])
	}
	fmt.Printf("own tree alone covers %.1f%% (paper reports ~25%% at its scale)\n\n",
		100*res.OwnTreeCoverage())

	// Part 2: heavyweight striped probing localizes a lossy link.
	g, err := topology.Generate(topology.TestConfig(), rng)
	if err != nil {
		log.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewSimulator(), rng,
		netsim.WithLossModel(netsim.LossModel{BaseLoss: 0.005, DownLoss: 0.45}))
	if err != nil {
		log.Fatal(err)
	}
	hosts := g.EndHosts()
	root := hosts[0]
	var leaves []tomography.Leaf
	for i := 1; i <= 6 && i < len(hosts); i++ {
		leaves = append(leaves, tomography.Leaf{Node: randomID(rng), Router: hosts[i*3%len(hosts)]})
	}
	tree, err := tomography.BuildTree(g, randomID(rng), root, leaves)
	if err != nil {
		log.Fatal(err)
	}
	victim := tree.Links()[len(tree.Links())/2]
	if err := net.SetLinkDown(victim, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heavyweight probing of a %d-leaf tree (%d links); link %d loses 45%%:\n",
		len(tree.Leaves), len(tree.Links()), victim)

	prober, err := tomography.NewProber(tree, net, rng)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	est, err := prober.HeavyweightProbe(tomography.DefaultHeavyweightConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d stripes, %d probe packets, inferred in %v\n",
		est.Stripes, est.Packets, time.Since(start).Round(time.Millisecond))
	for _, seg := range est.Segments {
		if seg.Loss < 0.02 {
			continue
		}
		fmt.Printf("  lossy segment %v: inferred loss %.1f%%\n", seg.Links, 100*seg.Loss)
	}
	loss, ok := est.LinkLoss(victim)
	fmt.Printf("  victim link %d: inferred loss %.1f%% (ok=%v, true 45%%)\n", victim, 100*loss, ok)

	// Binary conversion feeds the blame engine.
	obs := est.Observations(0.25)
	var down int
	for _, o := range obs {
		if !o.Up {
			down++
		}
	}
	fmt.Printf("  binary observations at 25%% threshold: %d of %d links down\n", down, len(obs))
}

func randomID(rng *rand.Rand) (out [16]byte) {
	for i := range out {
		out[i] = byte(rng.IntN(256))
	}
	return out
}
