// Quickstart: build a small Concilium deployment, break things, and
// watch the diagnosis.
//
// It constructs a simulated IP topology with a secure Pastry overlay on
// top, starts collaborative tomographic probing, then demonstrates the
// two failure modes the paper distinguishes: a message dropped by a
// failed IP link (the network is blamed) and a message dropped by a
// misbehaving forwarder (the forwarder is blamed, with a self-verifying
// accusation chain).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/id"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)

	// 1. Build the deployment: IP topology, CA, overlay, trees.
	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	rng := rand.New(rand.NewPCG(2026, 7))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay of %d nodes atop %d routers / %d links\n",
		len(sys.Order), sys.Topo.NumRouters(), sys.Topo.NumLinks())

	// 2. Start collaborative probing and let the archive warm up.
	if err := sys.StartProbing(); err != nil {
		log.Fatal(err)
	}
	sys.Run(5 * time.Minute)
	fmt.Printf("after 5 virtual minutes: %d disseminated probe records\n\n", sys.Archive.Size())

	// Find a multi-hop route to play with.
	src, dst, route := findRoute(sys)
	fmt.Printf("route: %s\n\n", routeString(route))

	// 3. Scenario A — the network drops the message.
	path, err := sys.Nodes[route[0]].PathToPeer(route[1])
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Net.SetLinkDown(path[0], true); err != nil {
		log.Fatal(err)
	}
	sys.Run(3 * time.Minute) // probes observe the outage
	rep, err := sys.SendMessage(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario A: IP link %d failed\n", path[0])
	fmt.Printf("  delivered: %v, network blamed: %v (correct: the overlay peers are innocent)\n\n",
		rep.Delivered, rep.NetworkBlamed)
	if err := sys.Net.SetLinkDown(path[0], false); err != nil {
		log.Fatal(err)
	}
	sys.Run(3 * time.Minute) // probes observe the repair

	// 4. Scenario B — a forwarder drops the message.
	dropper := route[1]
	sys.Nodes[dropper].Behavior = core.Behavior{DropsMessages: true}
	rep, err = sys.SendMessage(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario B: forwarder %s silently drops\n", dropper.Short())
	fmt.Printf("  delivered: %v, culprit: %s (ground truth: %s)\n",
		rep.Delivered, rep.Culprit.Short(), dropper.Short())
	if rep.Chain != nil {
		err := rep.Chain.Verify(sys.Keys(), cfg.Blame.GuiltyThreshold)
		fmt.Printf("  accusation chain of %d link(s) verifies independently: %v\n",
			len(rep.Chain.Links), err == nil)
	}
}

func findRoute(sys *core.System) (src, dst id.ID, route []id.ID) {
	for _, a := range sys.Order {
		for _, b := range sys.Order {
			if a == b {
				continue
			}
			rep, err := sys.SendMessage(a, b)
			if err != nil || len(rep.Route) < 3 {
				continue
			}
			return a, b, rep.Route
		}
	}
	panic("no multi-hop route in this overlay; try another seed")
}

func routeString(route []id.ID) string {
	s := ""
	for i, hop := range route {
		if i > 0 {
			s += " -> "
		}
		s += hop.Short()
	}
	return s
}
