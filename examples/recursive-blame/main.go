// Recursive blame: the paper's §3.5 walkthrough, end to end.
//
// D drops A's message along the forwarding chain A → B → C → D → Z while
// every IP link on the chain is healthy. Naive next-hop blame would pin
// B. With recursive stewardship, B and C also awaited Z's
// acknowledgment: each produced its own verdict against its next hop,
// and pushing those verdicts upstream amends A's accusation until it
// lands on D — with B and C exonerated, and the whole chain
// independently verifiable by third parties, then published to the
// accusation DHT.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	rng := rand.New(rand.NewPCG(11, 13))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		log.Fatal(err)
	}
	sys.Run(5 * time.Minute)
	now := sys.Sim.Now()

	// Build the forwarding chain A → B → C → D from routing-peer
	// relationships, plus a destination Z past D.
	chainIDs := buildChain(sys, 5) // A, B, C, D, Z
	a, b, c, d, z := chainIDs[0], chainIDs[1], chainIDs[2], chainIDs[3], chainIDs[4]
	fmt.Printf("forwarding chain: %s -> %s -> %s -> %s -> %s\n",
		a.Short(), b.Short(), c.Short(), d.Short(), z.Short())
	fmt.Printf("D (%s) silently drops the message; all chain links healthy\n\n", d.Short())

	// Every steward holds the next hop's signed forwarding commitment
	// (§3.6), batched onto availability-probe responses.
	msgID := sys.Nodes[a].NextMsgID()
	commit := func(from, via id.ID) core.Commitment {
		return core.NewCommitment(sys.Nodes[via].Keys, from, via, z, msgID, now)
	}

	// Z never acknowledges, so A, B, and C each judge their next hop
	// over the IP links the message needed after leaving them.
	stewards := []id.ID{a, b, c}
	nexts := []id.ID{b, c, d}
	var accusations []core.Accusation
	fmt.Println("per-steward verdicts:")
	for i, steward := range stewards {
		span, err := sys.Nodes[steward].PathToPeer(nexts[i])
		if err != nil {
			log.Fatal(err)
		}
		if i+1 < len(nexts) {
			onward, err := sys.Nodes[nexts[i]].PathToPeer(nexts[i+1])
			if err != nil {
				log.Fatal(err)
			}
			span = append(append([]topology.LinkID(nil), span...), onward...)
		}
		res, err := sys.Engine.Blame(nexts[i], span, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s judges %s: blame %.2f -> %s\n",
			steward.Short(), nexts[i].Short(), res.Blame, verdictWord(res.Guilty))
		if !res.Guilty {
			log.Fatalf("unexpected innocent verdict; a chain link was probably probed down")
		}
		acc, err := core.NewAccusation(sys.Nodes[steward].Keys, steward, res, msgID, span,
			commit(steward, nexts[i]))
		if err != nil {
			log.Fatal(err)
		}
		accusations = append(accusations, acc)
	}

	// Revision: C pushes its verdict against D to B; B amends and pushes
	// to A. Mechanically, the verdicts chain into one amended accusation.
	chain, err := core.NewRevisionChain(accusations[:1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA's original accusation blames: %s\n", chain.Culprit().Short())
	for _, downstream := range accusations[1:] {
		chain, err = chain.Extend(downstream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  amended with %s's verdict -> blames %s\n",
			downstream.Accuser.Short(), chain.Culprit().Short())
	}
	fmt.Printf("\nfinal culprit: %s (ground truth D: %v)\n", chain.Culprit().Short(), chain.Culprit() == d)
	for _, ex := range chain.Exonerated() {
		fmt.Printf("exonerated: %s\n", ex.Short())
	}
	err = chain.Verify(sys.Keys(), cfg.Blame.GuiltyThreshold)
	fmt.Printf("third-party verification of the amended accusation: %v\n", err == nil)

	// Publish into the accusation DHT; any peer considering D fetches it.
	store, err := dht.New(sys.Ring, dht.DefaultReplicas)
	if err != nil {
		log.Fatal(err)
	}
	repo, err := dht.NewAccusationRepo(store, sys.Keys(), cfg.Blame.GuiltyThreshold)
	if err != nil {
		log.Fatal(err)
	}
	if err := repo.Publish(chain); err != nil {
		log.Fatal(err)
	}
	n, err := repo.Count(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accusations on record against %s in the DHT: %d\n", d.Short(), n)
}

// buildChain walks routing-peer edges to assemble a chain of distinct
// nodes of the requested length.
func buildChain(sys *core.System, length int) []id.ID {
	var walk func(chain []id.ID) []id.ID
	walk = func(chain []id.ID) []id.ID {
		if len(chain) == length {
			return chain
		}
		cur := chain[len(chain)-1]
		for _, leaf := range sys.Nodes[cur].Tree.Leaves {
			dup := false
			for _, seen := range chain {
				if seen == leaf.Node {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if out := walk(append(chain, leaf.Node)); out != nil {
				return out
			}
		}
		return nil
	}
	for _, start := range sys.Order {
		if out := walk([]id.ID{start}); out != nil {
			return out
		}
	}
	log.Fatal("no forwarding chain of required length")
	return nil
}

func verdictWord(guilty bool) string {
	if guilty {
		return "GUILTY"
	}
	return "innocent"
}
