// Sanctioning: what happens after diagnosis (§3.6–§3.7).
//
// Concilium identifies faults; the network chooses the response. This
// example exercises the whole response surface: a forwarder that racks
// up verified accusations moves from good standing to local distrust to
// universal blacklist under the rate policy — while the paper's
// consistency rule keeps it in leaf sets until the blacklist is global.
// A second peer refuses to issue forwarding commitments, which no
// tomographic evidence can prove, so honest hosts fall back to
// Credence-style votes of no confidence.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"concilium/internal/core"
	"concilium/internal/dht"
	"concilium/internal/id"
	"concilium/internal/netsim"
	"concilium/internal/reputation"
	"concilium/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultSystemConfig()
	cfg.Topology = topology.TestConfig()
	cfg.OverlayFraction = 0.5
	cfg.ArchiveRetention = 5 * time.Minute
	rng := rand.New(rand.NewPCG(71, 73))
	sys, err := core.BuildSystem(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StartProbing(); err != nil {
		log.Fatal(err)
	}
	sys.Run(5 * time.Minute)

	// Accusation repository in the DHT, feeding the sanction policy.
	store, err := dht.New(sys.Ring, dht.DefaultReplicas)
	if err != nil {
		log.Fatal(err)
	}
	repo, err := dht.NewAccusationRepo(store, sys.Keys(), cfg.Blame.GuiltyThreshold)
	if err != nil {
		log.Fatal(err)
	}
	feed := func(peer id.ID) ([]netsim.Time, error) {
		chains, err := repo.Fetch(peer)
		if err != nil {
			return nil, err
		}
		times := make([]netsim.Time, 0, len(chains))
		for _, c := range chains {
			times = append(times, c.Links[len(c.Links)-1].At)
		}
		return times, nil
	}
	policy, err := core.NewPolicy(core.DefaultPolicyConfig(), feed)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: a dropper accumulates accusations and the sanction
	// escalates.
	src, dst, route := findRoute(sys)
	dropper := route[1]
	sys.Nodes[dropper].Behavior = core.Behavior{DropsMessages: true}
	fmt.Printf("part 1: %s starts dropping messages\n", dropper.Short())
	for round := 1; round <= 3; round++ {
		rep, err := sys.SendMessage(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Chain != nil {
			if err := repo.Publish(rep.Chain); err != nil {
				log.Fatal(err)
			}
		}
		sys.Run(time.Minute)
		sanction, err := policy.Evaluate(dropper, sys.Sim.Now())
		if err != nil {
			log.Fatal(err)
		}
		n, err := repo.Count(dropper)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after drop %d: %d accusation(s) on record -> sanction: %s"+
			" (evict from leaf sets: %v, carry sensitive traffic: %v)\n",
			round, n, sanction, core.MayEvictFromLeafSet(sanction),
			core.MayForwardSensitive(sanction))
	}

	// Part 2: commitment refusal falls back to reputation votes.
	refuser := route[2]
	fmt.Printf("\npart 2: %s refuses to issue forwarding commitments\n", refuser.Short())
	fmt.Println("  no tomographic evidence can prove refusal (§3.6), so honest")
	fmt.Println("  hosts cast signed votes of no confidence instead:")
	board := reputation.NewBoard()
	voters := 0
	for _, nid := range sys.Order {
		if nid == refuser || !sys.Nodes[nid].Behavior.Honest() {
			continue
		}
		v := reputation.NewVote(sys.Nodes[nid].Keys, nid, refuser, sys.Sim.Now())
		if err := board.Record(v, sys.Nodes[nid].Keys.Public); err != nil {
			log.Fatal(err)
		}
		voters++
		if voters == 5 {
			break
		}
	}
	trusted := func(x id.ID) bool {
		n, ok := sys.Nodes[x]
		return ok && n.Behavior.Honest()
	}
	fmt.Printf("  trusted no-confidence votes: %d\n", board.NoConfidence(refuser, trusted))
	fmt.Printf("  poor peer at quorum 3: %v\n", board.PoorPeer(refuser, trusted, 3))

	// Votes from a detected colluder do not count.
	colluder := dropper
	v := reputation.NewVote(sys.Nodes[colluder].Keys, colluder, refuser, sys.Sim.Now())
	if err := board.Record(v, sys.Nodes[colluder].Keys.Public); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after a detected dropper votes too: still %d trusted votes\n",
		board.NoConfidence(refuser, trusted))
}

func findRoute(sys *core.System) (src, dst id.ID, route []id.ID) {
	for _, a := range sys.Order {
		for _, b := range sys.Order {
			if a == b {
				continue
			}
			rep, err := sys.SendMessage(a, b)
			if err != nil || len(rep.Route) < 3 {
				continue
			}
			return a, b, rep.Route
		}
	}
	panic("no multi-hop route; try another seed")
}
