module concilium

go 1.22
